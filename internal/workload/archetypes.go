package workload

import (
	"mtvp/internal/asm"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
)

// resultBase is where kernels store their final accumulators, so
// architectural-equivalence tests can compare committed memory state.
const resultBase = 0x8000

// ChaseParams configures the pointer-chase archetype (mcf, parser, vortex,
// ammp): a randomised cyclic linked structure whose traversal defeats the
// stride prefetcher, with payload values drawn from a small reuse pool so
// payload loads are value-predictable even though next-pointers are not.
type ChaseParams struct {
	Nodes       int // nodes in the cycle
	NodeBytes   int // node size (>= 32)
	PoolSize    int // distinct payload values
	DominantPct int // percent of payloads equal to the dominant value
	ReusePct    int // percent of payloads drawn from the rest of the pool
	// SeqPct is the percent of nodes whose successor is the next node in
	// address order. Real list-walking codes (mcf's arc arrays above all)
	// allocate in traversal order, which is what makes their next
	// pointers stride-predictable; the remaining (100−SeqPct)% are random
	// jumps to another run.
	SeqPct  int
	BodyOps int   // filler ALU ops per iteration (loop-body weight)
	FPVal   bool  // payload is floating point (ammp-style)
	Iters   int64 // full traversals of the cycle
}

// PointerChase builds a pointer-chase benchmark.
func PointerChase(name string, suite Suite, p ChaseParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "chase", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		pool := valuePool(r, p.PoolSize, p.FPVal)
		order := runPermutation(r, p.Nodes, p.SeqPct)
		addr := func(i int) uint64 { return dataBase + uint64(i)*uint64(p.NodeBytes) }
		for i := 0; i < p.Nodes; i++ {
			cur, next := order[i], order[(i+1)%p.Nodes]
			m.Store(addr(cur), 8, addr(next))
			m.Store(addr(cur)+8, 8, drawValue(r, pool, p.DominantPct, p.ReusePct, p.FPVal))
		}

		b := asm.New(name)
		initFiller(b)
		b.Liu(isa.R1, addr(order[0])) // current node
		b.Li(isa.R4, p.Iters)
		b.Li(isa.R3, 0) // accumulator
		b.Label("outer")
		b.Li(isa.R5, int64(p.Nodes))
		b.Label("inner")
		if p.FPVal {
			b.Fld(isa.F1, isa.R1, 8) // payload: long latency, predictable
			b.Fadd(isa.F2, isa.F2, isa.F1)
			b.Ld(isa.R2, isa.R1, 8) // raw bits drive the branch
		} else {
			b.Ld(isa.R2, isa.R1, 8)
			b.Add(isa.R3, isa.R3, isa.R2)
		}
		b.Andi(isa.R6, isa.R2, 1)
		b.Beq(isa.R6, isa.R0, "even")
		b.Addi(isa.R3, isa.R3, 7)
		b.Label("even")
		b.Sd(isa.R3, isa.R1, 16)
		emitFiller(b, p.BodyOps)
		b.Ld(isa.R1, isa.R1, 0) // next pointer: stride-predictable within runs
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R7, resultBase)
		b.Sd(isa.R3, isa.R7, 0)
		if p.FPVal {
			b.Fsd(isa.F2, isa.R7, 8)
		}
		b.Halt()
		return b.MustBuild(), m
	}}
}

// StreamParams configures the streaming archetype (swim, wupwise, mgrid,
// applu, gap): dense array sweeps whose strides the prefetcher can learn,
// with piecewise-constant data so values repeat, and optional periodic
// pointer jumps that break the stride pattern (multi-plane mgrid-style
// traversals).
type StreamParams struct {
	Arrays      int // source arrays: 2 to 10 (real swim sweeps 9 grids)
	Len         int // elements per array per pass
	BlockLen    int // consecutive elements sharing one value
	PoolSize    int
	DominantPct int
	ReusePct    int
	Stride      int   // element stride in bytes (8 = dense)
	JumpEvery   int   // break the stride every this many elements (0 = never)
	JumpBytes   int   // how far the break jumps
	BodyOps     int   // filler ALU ops per element (loop-body weight)
	FP          bool  // floating point (SPEC FP) or integer (gap-style)
	Iters       int64 // passes over the arrays
}

// Stream builds a streaming benchmark.
func Stream(name string, suite Suite, p StreamParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "stream", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		pool := valuePool(r, p.PoolSize, p.FP)

		jumps := 0
		if p.JumpEvery > 0 {
			jumps = p.Len/p.JumpEvery + 1
		}
		span := uint64(p.Len*p.Stride + jumps*p.JumpBytes + 64)
		base := func(a int) uint64 { return dataBase + uint64(a)*span }
		nArr := p.Arrays + 1 // plus the destination array
		for a := 0; a < nArr; a++ {
			var v uint64
			for off := uint64(0); off < span; off += 8 {
				if (off/8)%uint64(max(p.BlockLen, 1)) == 0 {
					v = drawValue(r, pool, p.DominantPct, p.ReusePct, p.FP)
				}
				m.Store(base(a)+off, 8, v)
			}
		}

		srcRegs := []isa.Reg{
			isa.R1, isa.R2, isa.R7, isa.R13, isa.R14,
			isa.R15, isa.R16, isa.R17, isa.R18, isa.R19,
		}[:p.Arrays]
		dst := isa.R3
		b := asm.New(name)
		initFiller(b)
		b.Li(isa.R4, p.Iters)
		b.Label("outer")
		for i, reg := range srcRegs {
			b.Liu(reg, base(i))
		}
		b.Liu(dst, base(p.Arrays))
		b.Li(isa.R5, int64(p.Len))
		if p.JumpEvery > 0 {
			b.Li(isa.R9, int64(p.JumpEvery))
		}
		b.Label("inner")
		if p.FP {
			b.Fld(isa.F1, srcRegs[0], 0)
			b.Fld(isa.F2, srcRegs[1], 0)
			b.Fadd(isa.F3, isa.F1, isa.F2)
			for i := 2; i < p.Arrays; i++ {
				b.Fld(isa.F4, srcRegs[i], 0)
				if i%2 == 0 {
					b.Fmul(isa.F3, isa.F3, isa.F4)
				} else {
					b.Fadd(isa.F3, isa.F3, isa.F4)
				}
			}
			b.Fadd(isa.F5, isa.F5, isa.F3) // running sum for the result
			b.Fsd(isa.F3, dst, 0)
		} else {
			b.Ld(isa.R24, srcRegs[0], 0)
			b.Ld(isa.R25, srcRegs[1], 0)
			b.Add(isa.R26, isa.R24, isa.R25)
			for i := 2; i < p.Arrays; i++ {
				b.Ld(isa.R24, srcRegs[i], 0)
				b.Add(isa.R26, isa.R26, isa.R24)
			}
			b.Add(isa.R6, isa.R6, isa.R26)
			b.Sd(isa.R26, dst, 0)
		}
		emitFiller(b, p.BodyOps)
		step := int64(p.Stride)
		for _, reg := range srcRegs {
			b.Addi(reg, reg, step)
		}
		b.Addi(dst, dst, step)
		if p.JumpEvery > 0 {
			b.Addi(isa.R9, isa.R9, -1)
			b.Bne(isa.R9, isa.R0, "nojump")
			for _, reg := range srcRegs {
				b.Addi(reg, reg, int64(p.JumpBytes))
			}
			b.Addi(dst, dst, int64(p.JumpBytes))
			b.Li(isa.R9, int64(p.JumpEvery))
			b.Label("nojump")
		}
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R8, resultBase)
		if p.FP {
			b.Fsd(isa.F5, isa.R8, 0)
		} else {
			b.Sd(isa.R6, isa.R8, 0)
		}
		b.Halt()
		return b.MustBuild(), m
	}}
}

// GatherParams configures the sparse-gather archetype (art, equake, vpr,
// galgel): a sequential index array drives random accesses into a large
// table whose entries repeat heavily — exactly the combination (L3 misses +
// high value locality) where the paper's technique shines.
type GatherParams struct {
	Items       int // index-array length per pass
	TableLen    int // gathered-table elements (8 bytes each)
	PoolSize    int
	DominantPct int
	ReusePct    int
	FPData      bool
	StoreOut    bool  // also write a sequential output array
	BodyOps     int   // filler ALU ops per item (loop-body weight)
	Iters       int64 // passes
}

// Gather builds a sparse-gather benchmark.
func Gather(name string, suite Suite, p GatherParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "gather", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		pool := valuePool(r, p.PoolSize, p.FPData)

		idxBase := uint64(dataBase)
		tabBase := idxBase + uint64(p.Items)*8 + 4096
		outBase := tabBase + uint64(p.TableLen)*8 + 4096
		for i := 0; i < p.Items; i++ {
			m.Store(idxBase+uint64(i)*8, 8, uint64(r.Intn(p.TableLen)))
		}
		for i := 0; i < p.TableLen; i++ {
			m.Store(tabBase+uint64(i)*8, 8, drawValue(r, pool, p.DominantPct, p.ReusePct, p.FPData))
		}

		b := asm.New(name)
		initFiller(b)
		b.Li(isa.R4, p.Iters)
		b.Liu(isa.R8, tabBase)
		b.Label("outer")
		b.Liu(isa.R1, idxBase)
		if p.StoreOut {
			b.Liu(isa.R3, outBase)
		}
		b.Li(isa.R5, int64(p.Items))
		b.Label("inner")
		b.Ld(isa.R6, isa.R1, 0) // index: sequential, prefetchable
		b.Slli(isa.R6, isa.R6, 3)
		b.Add(isa.R6, isa.R6, isa.R8)
		if p.FPData {
			b.Fld(isa.F1, isa.R6, 0) // gather: misses, value-predictable
			b.Fadd(isa.F2, isa.F2, isa.F1)
			if p.StoreOut {
				b.Fsd(isa.F2, isa.R3, 0)
				b.Addi(isa.R3, isa.R3, 8)
			}
		} else {
			b.Ld(isa.R7, isa.R6, 0)
			b.Add(isa.R10, isa.R10, isa.R7)
			if p.StoreOut {
				b.Sd(isa.R10, isa.R3, 0)
				b.Addi(isa.R3, isa.R3, 8)
			}
		}
		emitFiller(b, p.BodyOps)
		b.Addi(isa.R1, isa.R1, 8)
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R9, resultBase)
		if p.FPData {
			b.Fsd(isa.F2, isa.R9, 0)
		} else {
			b.Sd(isa.R10, isa.R9, 0)
		}
		b.Halt()
		return b.MustBuild(), m
	}}
}

// BlockedParams configures the cache-resident compute archetype (crafty,
// eon, twolf, mesa, sixtrack): a small working set, long arithmetic
// dependence chains, and data-dependent branches. Memory latency is not the
// bottleneck, so value prediction has little to offer — as in the paper.
type BlockedParams struct {
	WorkingSet int  // bytes; should fit in L1/L2
	MulChain   int  // dependent multiply-add chain length per element
	FP         bool // FP arithmetic (mesa/sixtrack) vs integer (crafty)
	// SideTableLen, when nonzero, adds a periodic long-latency load: every
	// SideEvery elements, one load from a SideTableLen-entry table at a
	// data-dependent (unpredictable) address whose *value* is dominant —
	// the §5.3 scenario where a spawned thread runs hundreds of resident
	// instructions (and stores) before its prediction resolves, making
	// store-buffer capacity the binding limit. SideTableLen must be a
	// power of two.
	SideTableLen int
	SideEvery    int
	SideDominant int // percent of side-table entries equal to the dominant value
	Iters        int64
}

// Blocked builds a cache-resident compute benchmark.
func Blocked(name string, suite Suite, p BlockedParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "blocked", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		elems := p.WorkingSet / 16
		for i := 0; i < elems; i++ {
			m.Store(dataBase+uint64(i)*16, 8, uint64(r.Intn(1<<12)))
			m.Store(dataBase+uint64(i)*16+8, 8, 0)
		}
		sideBase := uint64(dataBase) + uint64(p.WorkingSet) + 1<<20
		if p.SideTableLen > 0 {
			pool := valuePool(r, 6, false)
			for i := 0; i < p.SideTableLen; i++ {
				m.Store(sideBase+uint64(i)*8, 8, drawValue(r, pool, p.SideDominant, 4, false))
			}
		}

		b := asm.New(name)
		b.Li(isa.R4, p.Iters)
		b.Li(isa.R3, 3)
		if p.FP {
			b.Li(isa.R10, 3)
			b.Itof(isa.F3, isa.R10)
		}
		if p.SideTableLen > 0 {
			b.Liu(isa.R19, sideBase)
			b.Li(isa.R9, int64(p.SideEvery))
			b.Li(isa.R26, 0)
		}
		b.J("start")
		// Compute helper, called once per element: exercises the call/
		// return path (and the return-address stack) the way real
		// compute kernels do.
		b.Label("helper")
		if p.FP {
			b.Itof(isa.F1, isa.R2)
			for i := 0; i < p.MulChain; i++ {
				b.Fmul(isa.F3, isa.F3, isa.F1)
				b.Fadd(isa.F3, isa.F3, isa.F1)
			}
			b.Ftoi(isa.R6, isa.F3)
			b.Andi(isa.R6, isa.R6, 3)
		} else {
			for i := 0; i < p.MulChain; i++ {
				b.Mul(isa.R3, isa.R3, isa.R2)
				b.Add(isa.R3, isa.R3, isa.R2)
			}
			b.Andi(isa.R6, isa.R2, 3)
		}
		b.Jr(isa.R28)
		b.Label("start")
		b.Label("outer")
		b.Liu(isa.R1, dataBase)
		b.Li(isa.R5, int64(elems))
		b.Label("inner")
		b.Ld(isa.R2, isa.R1, 0) // cache-resident load
		b.Jal(isa.R28, "helper")
		b.Beq(isa.R6, isa.R0, "sk1")
		b.Addi(isa.R3, isa.R3, 1)
		b.Label("sk1")
		b.Andi(isa.R7, isa.R2, 4)
		b.Beq(isa.R7, isa.R0, "sk2")
		b.Xor(isa.R3, isa.R3, isa.R2)
		b.Label("sk2")
		b.Sd(isa.R3, isa.R1, 8)
		if p.SideTableLen > 0 {
			b.Addi(isa.R9, isa.R9, -1)
			b.Bne(isa.R9, isa.R0, "noside")
			// Periodic gather at a data-dependent address: misses to
			// memory, but its value is dominant and so predictable.
			b.Add(isa.R27, isa.R19, isa.R26)
			b.Ld(isa.R24, isa.R27, 0)
			b.Add(isa.R3, isa.R3, isa.R24)
			b.Muli(isa.R26, isa.R26, 0x9E3779B1)
			b.Add(isa.R26, isa.R26, isa.R24)
			b.Addi(isa.R26, isa.R26, 104729)
			b.Andi(isa.R26, isa.R26, int64(p.SideTableLen-1)*8)
			b.Andi(isa.R27, isa.R26, 7)
			b.Sub(isa.R26, isa.R26, isa.R27) // 8-align the offset
			b.Li(isa.R9, int64(p.SideEvery))
			b.Label("noside")
		}
		b.Addi(isa.R1, isa.R1, 16)
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R9, resultBase)
		b.Sd(isa.R3, isa.R9, 0)
		b.Halt()
		return b.MustBuild(), m
	}}
}

// HashParams configures the hash-lookup archetype (gzip, perlbmk, vortex,
// gap): sequential input hashed into a table whose size sets the miss
// level; table payloads reuse a pool, and optional read-modify-write churn
// (compression updating its dictionary) erodes that locality.
type HashParams struct {
	InputLen    int // sequential input elements per pass
	TableLen    int // table elements; footprint = 8 * TableLen
	PoolSize    int
	DominantPct int
	ReusePct    int
	Update      bool // read-modify-write the table entry
	BodyOps     int  // filler ALU ops per lookup (loop-body weight)
	Iters       int64
}

// Hash builds a hash-lookup benchmark.
func Hash(name string, suite Suite, p HashParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "hash", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		pool := valuePool(r, p.PoolSize, false)

		inBase := uint64(dataBase)
		tabBase := inBase + uint64(p.InputLen)*8 + 4096
		for i := 0; i < p.InputLen; i++ {
			m.Store(inBase+uint64(i)*8, 8, r.Next()>>8)
		}
		for i := 0; i < p.TableLen; i++ {
			m.Store(tabBase+uint64(i)*8, 8, drawValue(r, pool, p.DominantPct, p.ReusePct, false))
		}
		shift := int64(64)
		for 1<<(64-shift) < p.TableLen {
			shift--
		}

		b := asm.New(name)
		initFiller(b)
		b.Li(isa.R4, p.Iters)
		b.Liu(isa.R8, tabBase)
		b.Label("outer")
		b.Liu(isa.R1, inBase)
		b.Li(isa.R5, int64(p.InputLen))
		b.Label("inner")
		b.Ld(isa.R2, isa.R1, 0) // input: sequential
		b.Muli(isa.R3, isa.R2, -0x61c8864680b583eb)
		b.Srli(isa.R3, isa.R3, shift)
		b.Slli(isa.R3, isa.R3, 3)
		b.Add(isa.R3, isa.R3, isa.R8)
		b.Ld(isa.R7, isa.R3, 0) // table: pseudo-random, miss level by size
		b.Add(isa.R6, isa.R6, isa.R7)
		if p.Update {
			b.Xor(isa.R7, isa.R7, isa.R2)
			b.Sd(isa.R7, isa.R3, 0)
		}
		b.Andi(isa.R10, isa.R7, 1)
		b.Beq(isa.R10, isa.R0, "noadd")
		b.Addi(isa.R6, isa.R6, 3)
		b.Label("noadd")
		emitFiller(b, p.BodyOps)
		b.Addi(isa.R1, isa.R1, 8)
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R9, resultBase)
		b.Sd(isa.R6, isa.R9, 0)
		b.Halt()
		return b.MustBuild(), m
	}}
}

// BranchyParams configures the token-processing archetype (the gcc inputs,
// perlbmk): a byte stream classified through compare-and-branch chains with
// a tunable class skew, plus a side-table load keyed by accumulated state.
type BranchyParams struct {
	Tokens   int // token-stream length per pass
	Classes  int // token classes (2..5); more classes = more branch entropy
	BiasPct  int // percent of tokens in class 0 (predictability)
	TableLen int // side-table elements (working set beyond the stream)
	Iters    int64
}

// Branchy builds a token-processing benchmark.
func Branchy(name string, suite Suite, p BranchyParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "branchy", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		tokBase := uint64(dataBase)
		tabBase := tokBase + uint64(p.Tokens) + 4096
		for i := 0; i < p.Tokens; i++ {
			var c int
			if r.Intn(100) < p.BiasPct {
				c = 0
			} else {
				c = 1 + r.Intn(p.Classes-1)
			}
			m.Store(tokBase+uint64(i), 1, uint64(c))
		}
		for i := 0; i < p.TableLen; i++ {
			m.Store(tabBase+uint64(i)*8, 8, uint64(r.Intn(1<<10)))
		}
		mask := int64(p.TableLen - 1)

		b := asm.New(name)
		b.Li(isa.R4, p.Iters)
		b.Liu(isa.R8, tabBase)
		b.Label("outer")
		b.Liu(isa.R1, tokBase)
		b.Li(isa.R5, int64(p.Tokens))
		b.Label("inner")
		b.Lb(isa.R2, isa.R1, 0)
		b.Beq(isa.R2, isa.R0, "case0")
		b.Li(isa.R7, 1)
		b.Beq(isa.R2, isa.R7, "case1")
		b.Li(isa.R7, 2)
		b.Beq(isa.R2, isa.R7, "case2")
		b.Add(isa.R3, isa.R3, isa.R2) // default
		b.J("join")
		b.Label("case0")
		b.Addi(isa.R3, isa.R3, 1)
		b.J("join")
		b.Label("case1")
		b.Muli(isa.R3, isa.R3, 5)
		b.Addi(isa.R3, isa.R3, 11)
		b.J("join")
		b.Label("case2")
		b.Andi(isa.R6, isa.R1, mask)
		b.Slli(isa.R6, isa.R6, 3)
		b.Add(isa.R6, isa.R6, isa.R8)
		b.Ld(isa.R7, isa.R6, 0) // data-dependent side-table load
		b.Add(isa.R3, isa.R3, isa.R7)
		b.Label("join")
		b.Addi(isa.R1, isa.R1, 1)
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R9, resultBase)
		b.Sd(isa.R3, isa.R9, 0)
		b.Halt()
		return b.MustBuild(), m
	}}
}

// SortParams configures the block-sort archetype (the bzip2 inputs, twolf):
// a sequential sweep with data-dependent secondary accesses inside a large
// window, conditional swaps, and evolving data.
type SortParams struct {
	BufLen  int // buffer elements (8 bytes each)
	Window  int // power-of-two window for the dependent access
	BodyOps int // filler ALU ops per element (loop-body weight)
	Iters   int64
}

// BlockSort builds a block-sort benchmark.
func BlockSort(name string, suite Suite, p SortParams) Benchmark {
	return Benchmark{Name: name, Suite: suite, Kind: "sort", build: func(seed uint64) (*isa.Program, *mem.Memory) {
		r := mem.NewRand(seed)
		m := mem.New()
		for i := 0; i < p.BufLen; i++ {
			m.Store(dataBase+uint64(i)*8, 8, r.Next()>>40)
		}
		mask := int64(p.Window - 1)

		b := asm.New(name)
		initFiller(b)
		b.Li(isa.R4, p.Iters)
		b.Liu(isa.R8, dataBase)
		b.Label("outer")
		b.Liu(isa.R1, dataBase)
		b.Li(isa.R5, int64(p.BufLen-p.Window))
		b.Label("inner")
		b.Ld(isa.R2, isa.R1, 0) // sequential element
		b.Andi(isa.R6, isa.R2, mask)
		b.Slli(isa.R6, isa.R6, 3)
		b.Add(isa.R6, isa.R1, isa.R6)
		b.Ld(isa.R7, isa.R6, 8) // data-dependent within the window
		b.Bltu(isa.R7, isa.R2, "noswap")
		b.Sd(isa.R2, isa.R6, 8) // conditional swap-down
		b.Label("noswap")
		b.Add(isa.R3, isa.R3, isa.R7)
		emitFiller(b, p.BodyOps)
		b.Addi(isa.R1, isa.R1, 8)
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "inner")
		b.Addi(isa.R4, isa.R4, -1)
		b.Bne(isa.R4, isa.R0, "outer")
		b.Li(isa.R9, resultBase)
		b.Sd(isa.R3, isa.R9, 0)
		b.Halt()
		return b.MustBuild(), m
	}}
}

// emitFiller emits n register-only ALU operations spread over three
// independent chains. Real SPEC loop bodies run 50-200 instructions; the
// filler gives each kernel iteration a realistic footprint in the ROB and
// issue queues, which is what bounds how far a single thread can speculate
// past a stalled load.
func emitFiller(b *asm.Builder, n int) {
	regs := [3]isa.Reg{isa.R20, isa.R21, isa.R22}
	for i := 0; i < n; i++ {
		r := regs[i%3]
		switch i % 7 {
		case 3:
			b.Xori(r, r, 0x5a5a)
		case 6:
			b.Mul(r, r, regs[(i+1)%3])
		default:
			b.Addi(r, r, int64(i%13)+1)
		}
	}
}

// initFiller seeds the filler chains.
func initFiller(b *asm.Builder) {
	b.Li(isa.R20, 3)
	b.Li(isa.R21, 5)
	b.Li(isa.R22, 7)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
