// Command mtvpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mtvpbench -exp fig1              # one experiment
//	mtvpbench -exp all -insts 200000 # everything (slow)
//
// Experiments: table1, fig1, fig2, sb, fig3, dfcm, fig4, fig5, multival,
// fig6, sharing, prefetch, selector, robust, all.
//
// The -faults flag arms a fault-injection profile (see internal/fault) on
// every simulated machine of the selected experiment; `-exp robust` runs
// the dedicated oracle-checked campaign over all built-in profiles.
//
// Long campaigns run on the supervised harness (internal/harness): -jobs
// bounds the worker pool, -timeout and -stall cancel wedged cells, -retries
// re-runs flaky ones, and -journal checkpoints every finished cell to a
// JSONL file so an interrupted campaign (Ctrl-C or SIGTERM drains cleanly;
// even a SIGKILL loses only in-flight cells) can be completed with -resume.
//
// -coordinator hands the campaign to a distributed sweep fabric instead of
// the local worker pool: cells are submitted to a `mtvpd serve` coordinator
// and executed by whatever `mtvpd work` agents are attached to it (-token
// authenticates). Reports are byte-identical to local runs regardless of
// worker count or worker deaths.
//
// -metrics-addr serves live campaign telemetry while the run is up: job
// counters and simulated cycle rates on /metrics (Prometheus text format),
// liveness on /healthz, and the standard /debug/pprof surface.
//
// Exit codes: 0 success, 1 usage or experiment error, 4 one or more cells
// exhausted their retries (failed job keys on stderr), 130 interrupted by
// SIGINT, 143 terminated by SIGTERM (both after a clean drain and journal
// flush).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mtvp/internal/experiments"
	"mtvp/internal/fault"
	"mtvp/internal/harness"
	"mtvp/internal/hostperf"
	"mtvp/internal/stats"
	"mtvp/internal/telemetry"
	"mtvp/internal/version"
	"mtvp/internal/workload"
)

// Host-side instrumentation state. Package-level because exit() leaves via
// os.Exit (skipping main's defers) and must still flush profiles and the
// partial -hostperf record — a campaign that died late is exactly the one
// whose host-perf trace you want.
var (
	stopProfiles func() error
	perfReport   *hostperf.Report
	perfPath     string
)

// flushHostArtifacts ends the pprof profiles and writes the -hostperf
// report, if either was requested. Safe to call more than once.
func flushHostArtifacts() {
	if stopProfiles != nil {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		stopProfiles = nil
	}
	if perfReport != nil {
		if err := perfReport.Write(perfPath); err != nil {
			fmt.Fprintf(os.Stderr, "hostperf: %v\n", err)
		}
		perfReport = nil
	}
}

func main() {
	var (
		exp      = flag.String("exp", "fig1", "experiment to regenerate (or 'all')")
		insts    = flag.Uint64("insts", 200_000, "useful committed instructions per run")
		seed     = flag.Uint64("seed", 1, "workload seed")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "campaign worker pool size")
		parallel = flag.Int("parallel", 0, "alias for -jobs (kept for compatibility)")
		benchCSV = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		faults   = flag.String("faults", "", "fault-injection profile armed on every run (\"\" = none)")
		fseed    = flag.Uint64("faultseed", 1, "fault injector seed")
		timeout  = flag.Duration("timeout", 0, "per-cell wall-clock deadline (0 = none)")
		stall    = flag.Duration("stall", 0, "cancel a cell whose simulated cycles stop advancing for this long (0 = off)")
		retries  = flag.Int("retries", 1, "re-runs per failed or timed-out cell")
		journal  = flag.String("journal", "", "JSONL checkpoint journal path (\"\" = no checkpointing)")
		resume   = flag.String("resume", "", "resume from this journal: skip done cells, re-run failures")
		coord    = flag.String("coordinator", "", "run campaigns on this sweep-fabric coordinator (base URL of `mtvpd serve`; \"\" = local worker pool)")
		token    = flag.String("token", "", "bearer token for the fabric coordinator")
		quiet    = flag.Bool("quiet", false, "suppress per-event campaign progress on stderr")
		metrics  = flag.String("metrics-addr", "", "serve live campaign telemetry on this host:port (/metrics, /healthz, /debug/pprof; \"\" = off)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the host process to FILE")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to FILE")
		hostJSON = flag.String("hostperf", "", "write a machine-readable host-performance record (JSON: sim Mcycles/sec, Minsts/sec, allocs and wall time per campaign cell) to FILE")
		showVer  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "mtvpbench")
		return
	}

	stop, err := hostperf.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopProfiles = stop
	defer flushHostArtifacts()
	if *hostJSON != "" {
		perfReport = hostperf.NewReport("mtvpbench")
		perfPath = *hostJSON
	}

	opt := experiments.DefaultOptions()
	opt.Insts = *insts
	opt.Seed = *seed
	opt.Parallel = *jobs
	if *parallel > 0 {
		opt.Parallel = *parallel
	}
	opt.FaultProfile = *faults
	opt.FaultSeed = *fseed
	opt.Timeout = *timeout
	opt.StallTimeout = *stall
	opt.Retries = *retries
	opt.Journal = *journal
	opt.HandleSignals = true
	opt.Summary = &harness.Summary{}
	opt.Coordinator = *coord
	opt.Token = *token
	if *resume != "" {
		if *journal != "" && *journal != *resume {
			fmt.Fprintln(os.Stderr, "-journal and -resume name different files; -resume both reads and extends its journal")
			os.Exit(1)
		}
		opt.Journal = *resume
		opt.Resume = true
	}
	if !*quiet {
		opt.OnEvent = func(ev harness.Event) {
			switch ev.Kind {
			case harness.EventRetry:
				fmt.Fprintf(os.Stderr, "# retry %s (attempt %d): %s\n", ev.Key, ev.Attempt, ev.Err)
			case harness.EventFail:
				fmt.Fprintf(os.Stderr, "# FAIL  %s after %d attempts: %s\n", ev.Key, ev.Attempt, ev.Err)
			case harness.EventDrain:
				fmt.Fprintln(os.Stderr, "# interrupt: draining in-flight cells, journal will be flushed (interrupt again to cancel)")
			}
		}
	}
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		version.Register(reg)
		campaign := telemetry.NewCampaign(reg)
		srv, err := telemetry.NewServer(*metrics, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "# telemetry: %s/metrics (also /healthz, /debug/pprof)\n", srv.URL())
		opt.Progress = campaign.Progress
		opt.OnEvent = teeEvents(opt.OnEvent, func(ev harness.Event) {
			switch ev.Kind {
			case harness.EventStart:
				campaign.JobsStarted.Inc()
				campaign.InFlight.Add(1)
			case harness.EventDone:
				campaign.JobsDone.Inc()
				campaign.InFlight.Add(-1)
			case harness.EventFail:
				campaign.JobsFailed.Inc()
				campaign.InFlight.Add(-1)
			case harness.EventRetry:
				campaign.JobsRetried.Inc()
			case harness.EventSkip:
				campaign.JobsSkipped.Inc()
			}
		})
	}
	if _, err := fault.ByName(*faults); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *benchCSV != "" {
		for _, name := range strings.Split(*benchCSV, ",") {
			b, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opt.Benchmarks = append(opt.Benchmarks, b)
		}
	}

	type entry struct {
		name string
		run  func(experiments.Options) ([]*stats.Table, error)
	}
	all := []entry{
		{"fig1", experiments.Fig1},
		{"fig2", experiments.Fig2},
		{"sb", func(o experiments.Options) ([]*stats.Table, error) {
			t, err := experiments.StoreBufferSweep(o)
			if err != nil {
				return nil, err
			}
			return []*stats.Table{t}, nil
		}},
		{"fig3", experiments.Fig3},
		{"dfcm", experiments.DFCMCompare},
		{"fig4", experiments.Fig4},
		{"fig5", experiments.Fig5},
		{"multival", experiments.MultiValue},
		{"fig6", experiments.Fig6},
		{"sharing", experiments.SharingStudy},
		{"prefetch", experiments.PrefetchAblation},
		{"selector", experiments.SelectorCompare},
		{"sborg", experiments.StoreBufferOrg},
		{"robust", experiments.FaultCampaign},
	}

	if *exp == "table1" || *exp == "all" {
		fmt.Println("Table 1: Simulator Architectural Parameters")
		fmt.Println(experiments.Table1())
	}
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		start := time.Now()
		// Host-perf records are per experiment: the summary is cumulative
		// across the whole invocation, so diff it around the run.
		before := *opt.Summary
		meter := hostperf.StartMeter()
		tables, err := e.run(opt)
		if perfReport != nil {
			after := opt.Summary
			perfReport.Records = append(perfReport.Records, meter.Stop(e.name,
				after.Completed-before.Completed,
				after.SimCycles-before.SimCycles,
				after.SimInsts-before.SimInsts))
		}
		if err != nil {
			exit(e.name, err, opt.Summary)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("[%s finished in %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if *exp != "table1" && *exp != "all" {
		found := false
		for _, e := range all {
			if e.name == *exp {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(1)
		}
	}
	if opt.Summary.Total > 0 {
		opt.Summary.Render(os.Stdout)
	}
}

// teeEvents fans one harness event stream to several consumers (the stderr
// progress log and the live telemetry bridge).
func teeEvents(fns ...func(harness.Event)) func(harness.Event) {
	return func(ev harness.Event) {
		for _, fn := range fns {
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// exit reports an experiment failure with the harness's exit-code contract:
// 4 when cells exhausted their retries (keys listed on stderr), 128+signum
// when the campaign was drained by a signal (130 SIGINT, 143 SIGTERM), 1
// otherwise.
func exit(name string, err error, sum *harness.Summary) {
	flushHostArtifacts()
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	if sum != nil && sum.Total > 0 {
		sum.Render(os.Stderr)
	}
	var failed *harness.FailedError
	var interrupted *harness.InterruptedError
	switch {
	case errors.As(err, &failed):
		fmt.Fprintf(os.Stderr, "%d cells exhausted their retries:\n", len(failed.Failures))
		for _, f := range failed.Failures {
			fmt.Fprintf(os.Stderr, "  %s (%s after %d attempts): %s\n", f.Key, f.Kind, f.Attempts, f.Err)
		}
		os.Exit(4)
	case errors.As(err, &interrupted):
		os.Exit(interrupted.ExitCode())
	case errors.Is(err, harness.ErrInterrupted):
		os.Exit(130)
	}
	os.Exit(1)
}
