// Command mtvpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mtvpbench -exp fig1              # one experiment
//	mtvpbench -exp all -insts 200000 # everything (slow)
//
// Experiments: table1, fig1, fig2, sb, fig3, dfcm, fig4, fig5, multival,
// fig6, prefetch, selector, robust, all.
//
// The -faults flag arms a fault-injection profile (see internal/fault) on
// every simulated machine of the selected experiment; `-exp robust` runs
// the dedicated oracle-checked campaign over all built-in profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mtvp/internal/experiments"
	"mtvp/internal/fault"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "fig1", "experiment to regenerate (or 'all')")
		insts    = flag.Uint64("insts", 200_000, "useful committed instructions per run")
		seed     = flag.Uint64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
		benchCSV = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		faults   = flag.String("faults", "", "fault-injection profile armed on every run (\"\" = none)")
		fseed    = flag.Uint64("faultseed", 1, "fault injector seed")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Insts = *insts
	opt.Seed = *seed
	opt.Parallel = *parallel
	opt.FaultProfile = *faults
	opt.FaultSeed = *fseed
	if _, err := fault.ByName(*faults); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *benchCSV != "" {
		for _, name := range strings.Split(*benchCSV, ",") {
			b, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opt.Benchmarks = append(opt.Benchmarks, b)
		}
	}

	type entry struct {
		name string
		run  func(experiments.Options) ([]*stats.Table, error)
	}
	all := []entry{
		{"fig1", experiments.Fig1},
		{"fig2", experiments.Fig2},
		{"sb", func(o experiments.Options) ([]*stats.Table, error) {
			t, err := experiments.StoreBufferSweep(o)
			if err != nil {
				return nil, err
			}
			return []*stats.Table{t}, nil
		}},
		{"fig3", experiments.Fig3},
		{"dfcm", experiments.DFCMCompare},
		{"fig4", experiments.Fig4},
		{"fig5", experiments.Fig5},
		{"multival", experiments.MultiValue},
		{"fig6", experiments.Fig6},
		{"prefetch", experiments.PrefetchAblation},
		{"selector", experiments.SelectorCompare},
		{"sborg", experiments.StoreBufferOrg},
		{"robust", experiments.FaultCampaign},
	}

	if *exp == "table1" || *exp == "all" {
		fmt.Println("Table 1: Simulator Architectural Parameters")
		fmt.Println(experiments.Table1())
	}
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		start := time.Now()
		tables, err := e.run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("[%s finished in %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if *exp != "table1" && *exp != "all" {
		found := false
		for _, e := range all {
			if e.name == *exp {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(1)
		}
	}
}
