// Command mtvpreport regenerates every experiment and writes the
// paper-vs-measured report (EXPERIMENTS.md).
//
// Usage:
//
//	mtvpreport -o EXPERIMENTS.md -insts 150000
//
// The experiments run as supervised harness campaigns: -timeout/-stall
// cancel wedged cells, -retries re-runs flaky ones, and -journal/-resume
// checkpoint the campaign so an interrupted report generation can be
// completed without re-simulating finished cells. The campaign summary
// (cells completed/retried/failed/skipped, wall time) is printed to stderr.
//
// -coordinator runs every campaign on a distributed sweep fabric (`mtvpd
// serve` + `mtvpd work` agents) instead of the local worker pool; the
// generated report is byte-identical either way.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mtvp/internal/experiments"
	"mtvp/internal/harness"
	"mtvp/internal/version"
)

func main() {
	var (
		out     = flag.String("o", "EXPERIMENTS.md", "output file (- for stdout)")
		insts   = flag.Uint64("insts", 150_000, "useful committed instructions per run")
		seed    = flag.Uint64("seed", 1, "workload seed")
		jobs    = flag.Int("jobs", runtime.NumCPU(), "campaign worker pool size")
		timeout = flag.Duration("timeout", 0, "per-cell wall-clock deadline (0 = none)")
		stall   = flag.Duration("stall", 0, "cancel a cell whose simulated cycles stop advancing for this long (0 = off)")
		retries = flag.Int("retries", 1, "re-runs per failed or timed-out cell")
		journal = flag.String("journal", "", "JSONL checkpoint journal path (\"\" = no checkpointing)")
		resume  = flag.String("resume", "", "resume from this journal: skip done cells, re-run failures")
		coord   = flag.String("coordinator", "", "run campaigns on this sweep-fabric coordinator (base URL of `mtvpd serve`; \"\" = local worker pool)")
		token   = flag.String("token", "", "bearer token for the fabric coordinator")
		showVer = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "mtvpreport")
		return
	}

	opt := experiments.DefaultOptions()
	opt.Insts = *insts
	opt.Seed = *seed
	opt.Parallel = *jobs
	opt.Timeout = *timeout
	opt.StallTimeout = *stall
	opt.Retries = *retries
	opt.Journal = *journal
	opt.HandleSignals = true
	opt.Summary = &harness.Summary{}
	opt.Coordinator = *coord
	opt.Token = *token
	if *resume != "" {
		opt.Journal = *resume
		opt.Resume = true
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.GenerateReport(opt, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if opt.Summary.Total > 0 {
			opt.Summary.Render(os.Stderr)
		}
		var failed *harness.FailedError
		var interrupted *harness.InterruptedError
		switch {
		case errors.As(err, &failed):
			for _, f := range failed.Failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(4)
		case errors.As(err, &interrupted):
			os.Exit(interrupted.ExitCode())
		case errors.Is(err, harness.ErrInterrupted):
			os.Exit(130)
		}
		os.Exit(1)
	}
	if opt.Summary.Total > 0 {
		opt.Summary.Render(os.Stderr)
	}
}
