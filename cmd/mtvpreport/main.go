// Command mtvpreport regenerates every experiment and writes the
// paper-vs-measured report (EXPERIMENTS.md).
//
// Usage:
//
//	mtvpreport -o EXPERIMENTS.md -insts 150000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mtvp/internal/experiments"
)

func main() {
	var (
		out      = flag.String("o", "EXPERIMENTS.md", "output file (- for stdout)")
		insts    = flag.Uint64("insts", 150_000, "useful committed instructions per run")
		seed     = flag.Uint64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Insts = *insts
	opt.Seed = *seed
	opt.Parallel = *parallel

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.GenerateReport(opt, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
