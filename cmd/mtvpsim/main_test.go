package main

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"mtvp/internal/fault"
	"mtvp/internal/oracle"
)

func TestExitCode(t *testing.T) {
	div := &oracle.Divergence{Reason: "value mismatch"}
	rep := &fault.Report{Reason: "recovery exhausted"}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"generic", errors.New("boom"), exitErr},
		{"divergence", div, exitDivergence},
		{"wrapped divergence", fmt.Errorf("core: mcf: %w", error(div)), exitDivergence},
		{"fault report", rep, exitFault},
		{"wrapped fault report", fmt.Errorf("core: mcf: %w", error(rep)), exitFault},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != exitOK {
		t.Fatalf("-list exited %d: %s", code, errw.String())
	}
	if out.Len() == 0 {
		t.Fatal("-list printed nothing")
	}
}

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{"-bench", "no-such-bench"},
		{"-machine", "no-such-machine"},
		{"-pred", "no-such-pred"},
		{"-sel", "no-such-sel"},
		{"-faults", "no-such-profile"},
		{"-engine", "no-such-engine"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != exitErr {
			t.Errorf("run(%v) exited %d, want %d", args, code, exitErr)
		}
	}
}

func TestRunCheckedCleanExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "mcf", "-machine", "mtvp", "-contexts", "4",
		"-check", "-insts", "3000"}
	if code := run(args, &out, &errw); code != exitOK {
		t.Fatalf("checked run exited %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "checked") {
		t.Fatalf("checked run output missing checker line:\n%s", out.String())
	}
}

// TestRunEngineFlag pins the -engine A/B contract at the CLI level: both
// schedulers exit zero on a checked run and print identical statistics
// (only the machine banner, which names the engine, may differ).
func TestRunEngineFlag(t *testing.T) {
	outputs := map[string]string{}
	for _, eng := range []string{"event", "polling"} {
		var out, errw bytes.Buffer
		args := []string{"-bench", "mcf", "-machine", "mtvp", "-contexts", "4",
			"-check", "-insts", "3000", "-engine", eng}
		if code := run(args, &out, &errw); code != exitOK {
			t.Fatalf("-engine %s exited %d: %s", eng, code, errw.String())
		}
		if !strings.Contains(out.String(), "engine="+eng) {
			t.Fatalf("-engine %s banner missing from output:\n%s", eng, out.String())
		}
		// Strip the banner line before comparing: it is the only line
		// allowed to differ between engines.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if !strings.HasPrefix(line, "machine") {
				kept = append(kept, line)
			}
		}
		outputs[eng] = strings.Join(kept, "\n")
	}
	if outputs["event"] != outputs["polling"] {
		t.Fatalf("engine outputs diverge:\nevent:\n%s\npolling:\n%s",
			outputs["event"], outputs["polling"])
	}
}

func TestRunFaultCampaignPrintsCounters(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-bench", "mcf", "-machine", "mtvp", "-contexts", "4",
		"-check", "-insts", "3000", "-faults", "spawn-storm", "-faultseed", "7"}
	code := run(args, &out, &errw)
	if code != exitOK && code != exitFault {
		t.Fatalf("campaign run exited %d (want clean recovery or structured fault): %s",
			code, errw.String())
	}
	if code == exitOK && !strings.Contains(out.String(), "faults     profile spawn-storm") {
		t.Fatalf("campaign output missing fault counters:\n%s", out.String())
	}
	if code == exitFault && !strings.Contains(errw.String(), "fault report:") {
		t.Fatalf("fault exit without a structured report on stderr:\n%s", errw.String())
	}
}
