// Command mtvpsim runs one benchmark on one machine configuration and
// prints its statistics.
//
// Usage:
//
//	mtvpsim -bench mcf -machine mtvp -contexts 4 -vpred wf -sel ilp
//	mtvpsim -bench mcf -machine mtvp -vpred vpq-stride -vpred-sharing private
//	mtvpsim -bench mcf -machine mtvp -check -faults spawn-storm
//	mtvpsim -bench mcf -deadline 30s   # cancel cooperatively if it wedges
//	mtvpsim -bench mcf -engine polling # legacy per-cycle scan (A/B reference)
//	mtvpsim -list
//
// The -engine flag selects the simulation scheduler: "event" (the default
// calendar-driven core) or "polling" (the legacy per-cycle quiescence scan).
// Both produce bit-identical results (test-enforced); the flag exists for
// A/B validation and for profiling one against the other. Exit codes are
// identical under either engine.
//
// Exit codes: 0 on success, 1 on usage or generic simulation errors, 2 when
// the lockstep oracle checker detects a divergence (a wrong committed
// value), 3 when the engine aborts with a structured fault report
// (recovery exhausted under a fault campaign), 128+signum when a SIGINT or
// SIGTERM stopped the run (130/143; the engine halts cooperatively at the
// next observer poll, so trace and series sinks are still flushed).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/fault"
	"mtvp/internal/hostperf"
	"mtvp/internal/oracle"
	"mtvp/internal/telemetry"
	"mtvp/internal/trace"
	"mtvp/internal/version"
	"mtvp/internal/workload"
)

// Exit codes. Scripts driving fault campaigns distinguish "the machine
// committed a wrong value" (the one outcome the robustness contract
// forbids) from "the machine gave up cleanly".
const (
	exitOK         = 0
	exitErr        = 1
	exitDivergence = 2
	exitFault      = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitCode maps a simulation error to the process exit code.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	if oracle.IsDivergence(err) {
		return exitDivergence
	}
	var rep *fault.Report
	if errors.As(err, &rep) {
		return exitFault
	}
	return exitErr
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtvpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "mcf", "benchmark name (see -list)")
		machine   = fs.String("machine", "baseline", "baseline | stvp | mtvp | mtvp-nostall | multival | spawn-only | wide-window")
		contexts  = fs.Int("contexts", 4, "hardware thread contexts (mtvp machines)")
		pred      = fs.String("pred", "wf", "value predictor (alias of -vpred)")
		vpredF    = fs.String("vpred", "", "value predictor: "+strings.Join(config.PredictorNames(), " | ")+" (overrides -pred)")
		sharing   = fs.String("vpred-sharing", "shared", "predictor table organisation across contexts: "+strings.Join(config.SharingNames(), " | "))
		sel       = fs.String("sel", "ilp", "load selector: ilp | l3 | always")
		engine    = fs.String("engine", "event", "simulation scheduler: event (calendar-driven) | polling (legacy per-cycle scan); results are bit-identical")
		spawnLat  = fs.Int("spawnlat", -1, "spawn latency in cycles (-1 = machine default)")
		storeBuf  = fs.Int("storebuf", -1, "store buffer entries per context (-1 = default, 0 = unbounded)")
		insts     = fs.Uint64("insts", 300_000, "useful committed instruction budget")
		seed      = fs.Uint64("seed", 1, "workload seed")
		noPrefS   = fs.Bool("noprefetch", false, "disable the stride prefetcher")
		check     = fs.Bool("check", false, "run the lockstep oracle checker and pipeline invariant auditor (slower; fails loudly on any divergence)")
		faults    = fs.String("faults", "", "fault-injection profile (pred-flip, spawn-storm, stuck-iq, monsoon, ...; \"\" = none)")
		faultSeed = fs.Uint64("faultseed", 1, "fault injector seed (campaigns are reproducible from profile+seed)")
		watchdog  = fs.Int64("watchdog", 0, "recovery watchdog base in cycles (0 = default)")
		deadline  = fs.Duration("deadline", 0, "wall-clock deadline; the engine is canceled at the next observer poll (0 = none)")
		list      = fs.Bool("list", false, "list benchmarks and exit")
		traceN    = fs.Uint64("trace", 0, "print the first N pipeline trace events to stderr")
		traceKind = fs.String("tracekinds", "", "comma-separated event kinds to trace (spawn,confirm,kill,commit,fault,...)")
		traceJSON = fs.String("trace-json", "", "write the full pipeline event stream as JSONL to FILE (-tracekinds filters it too)")
		perfetto  = fs.String("perfetto", "", "write a Chrome trace-event (Perfetto/about:tracing) timeline to FILE")
		series    = fs.String("series", "", "write a cycle-bucketed time series to FILE (.csv = CSV, else JSONL)")
		seriesN   = fs.Int64("series-every", telemetry.DefaultSampleEvery, "time-series bucket width in cycles")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the host process to FILE")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile at exit to FILE")
		showVer   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if *showVer {
		version.Print(stdout, "mtvpsim")
		return exitOK
	}

	stopProfiles, err := hostperf.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitErr
	}
	// Flushed by defer so profiles survive every exit path, including a
	// divergence or structured fault abort — profiling a failing run is a
	// perfectly good reason to profile.
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	if *list {
		for _, b := range workload.All() {
			fmt.Fprintf(stdout, "%-12s %-8s %s\n", b.Name, b.Kind, b.Suite)
		}
		return exitOK
	}

	bench, err := workload.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitErr
	}

	predName := *pred
	if *vpredF != "" {
		predName = *vpredF
	}
	pk, err := config.ParsePredictor(predName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitErr
	}
	sm, err := config.ParseSharing(*sharing)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitErr
	}
	sk, err := parseSel(*sel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitErr
	}

	var cfg config.Config
	switch *machine {
	case "baseline":
		cfg = core.Baseline()
	case "stvp":
		cfg = core.STVP(pk, sk)
	case "mtvp":
		cfg = core.MTVP(*contexts, pk, sk)
	case "mtvp-nostall":
		cfg = core.MTVPNoStall(*contexts, pk, sk)
	case "multival":
		cfg = core.MTVPMultiValue(*contexts, 3, 6)
	case "spawn-only":
		cfg = core.SpawnOnly(*contexts)
	case "wide-window":
		cfg = core.WideWindow()
	default:
		fmt.Fprintf(stderr, "unknown machine %q\n", *machine)
		return exitErr
	}
	switch *engine {
	case "event":
		// Default: Config zero value.
	case "polling":
		cfg.DisableEventQueue = true
	default:
		fmt.Fprintf(stderr, "unknown engine %q (want event or polling)\n", *engine)
		return exitErr
	}
	cfg.VP.Sharing = sm
	if *spawnLat >= 0 {
		cfg.VP.SpawnLatency = *spawnLat
	}
	if *storeBuf >= 0 {
		cfg.VP.StoreBufEntries = *storeBuf
	}
	if *noPrefS {
		cfg.Prefetch.Enabled = false
	}
	cfg.MaxInsts = *insts
	cfg.Seed = *seed
	cfg.Check = *check
	cfg.Faults.Profile = *faults
	cfg.Faults.Seed = *faultSeed
	cfg.Recovery.WatchdogCycles = *watchdog
	if _, err := fault.ByName(*faults); err != nil {
		fmt.Fprintln(stderr, err)
		return exitErr
	}

	if *deadline > 0 {
		// Cooperative wall-clock deadline: the engine polls the observer
		// every ~1k cycles and stops with pipeline.ErrCanceled once the
		// budget is spent — the same hook the campaign harness supervises
		// sweeps through.
		start := time.Now()
		limit := *deadline
		cfg.Observe = func(cycles, commits uint64) bool {
			return time.Since(start) < limit
		}
	}

	// Graceful SIGINT/SIGTERM: stop the engine at the next observer poll so
	// every sink still flushes (the partial timeline of an interrupted run
	// is worth keeping), then exit 128+signum.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	var gotSig os.Signal
	prevObserve := cfg.Observe
	cfg.Observe = func(cycles, commits uint64) bool {
		select {
		case s := <-sigCh:
			gotSig = s
			return false
		default:
		}
		return prevObserve == nil || prevObserve(cycles, commits)
	}

	prog, image := bench.Build(*seed)

	var kinds []trace.Kind
	if *traceKind != "" {
		var err error
		if kinds, err = parseKinds(*traceKind); err != nil {
			fmt.Fprintln(stderr, err)
			return exitErr
		}
	}

	var tracers []trace.Tracer
	if *traceN > 0 {
		tracers = append(tracers, &trace.Writer{W: stderr, Max: *traceN, Kinds: kinds})
	}
	var jsonSink *telemetry.JSONLSink
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitErr
		}
		defer f.Close()
		jsonSink = telemetry.NewJSONLSink(f)
		jsonSink.Kinds = kinds
		tracers = append(tracers, jsonSink)
	}
	var perfettoSink *telemetry.PerfettoSink
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitErr
		}
		defer f.Close()
		perfettoSink = telemetry.NewPerfettoSink(f)
		tracers = append(tracers, perfettoSink)
	}

	ins := core.Instruments{Tracer: trace.Multi(tracers...)}
	var sampler *telemetry.Sampler
	if *series != "" {
		sampler = telemetry.NewSampler(*seriesN)
	}
	if sampler != nil || perfettoSink != nil || jsonSink != nil {
		// The machine probe is cheap; attach it whenever any sink wants
		// per-cycle data, so a lone -perfetto still gets counter tracks.
		ins.Machine = telemetry.NewMachine(telemetry.NewRegistry(), sampler)
	}

	res, runErr := core.RunInstrumented(cfg, prog, image, ins)

	// Sinks are flushed even when the run failed: a canceled or faulted
	// run's partial timeline is exactly what you want to look at.
	if jsonSink != nil {
		if err := jsonSink.Close(); err != nil {
			fmt.Fprintf(stderr, "trace-json: %v\n", err)
		}
	}
	if perfettoSink != nil {
		if err := perfettoSink.Close(); err != nil {
			fmt.Fprintf(stderr, "perfetto: %v\n", err)
		}
	}
	if sampler != nil {
		if err := writeSeries(*series, sampler); err != nil {
			fmt.Fprintf(stderr, "series: %v\n", err)
		}
	}
	if gotSig != nil {
		fmt.Fprintf(stderr, "mtvpsim: %v: run stopped at the next observer poll (sinks flushed)\n", gotSig)
		if s, ok := gotSig.(syscall.Signal); ok {
			return 128 + int(s)
		}
		return 130
	}
	if runErr != nil {
		fmt.Fprintln(stderr, runErr)
		return exitCode(runErr)
	}

	s := &res.Stats
	fmt.Fprintf(stdout, "benchmark  %s (%s, %s)\n", bench.Name, bench.Kind, bench.Suite)
	fmt.Fprintf(stdout, "machine    %s pred=%s sharing=%s sel=%s contexts=%d spawn=%dcyc storebuf=%d engine=%s\n",
		*machine, cfg.VP.Predictor, cfg.VP.Sharing, cfg.VP.Selector, cfg.Contexts,
		cfg.VP.SpawnLatency, cfg.VP.StoreBufEntries, *engine)
	fmt.Fprintf(stdout, "cycles     %d\n", s.Cycles)
	fmt.Fprintf(stdout, "committed  %d (useful)\n", s.Committed)
	if *check {
		fmt.Fprintf(stdout, "checked    %d useful commits verified against the lockstep oracle\n", res.Checked)
	}
	fmt.Fprintf(stdout, "IPC        %.4f\n", s.UsefulIPC())
	fmt.Fprintf(stdout, "branches   %d (%.2f%% mispredicted)\n", s.Branches,
		100*float64(s.BranchWrong)/maxf(float64(s.Branches), 1))
	fmt.Fprintf(stdout, "loads      %d  DL1 miss %d  L2 miss %d  L3 miss %d  sbuf fwd %d\n",
		s.Loads, s.DL1Miss, s.L2Miss, s.L3Miss, s.StoreBufHits)
	fmt.Fprintf(stdout, "prefetch   issued %d  stream hits %d\n", s.PrefIssued, s.PrefHits)
	if s.VPLookups > 0 {
		fmt.Fprintf(stdout, "vpred      lookups %d  confident %d  followed %d  correct %d  wrong %d (acc %.3f)\n",
			s.VPLookups, s.VPConfident, s.VPPredicted, s.VPCorrect, s.VPWrong, s.VPAccuracy())
		fmt.Fprintf(stdout, "threads    spawns %d  confirms %d  kills %d  stvp %d  reissues %d  squashed %d\n",
			s.Spawns, s.Confirms, s.Kills, s.STVPUsed, s.Reissues, s.Squashed)
		if s.VPWrongButPresent > 0 || s.MultiValueSaves > 0 {
			fmt.Fprintf(stdout, "multival   wrong-but-present %d  saves %d\n",
				s.VPWrongButPresent, s.MultiValueSaves)
		}
	}
	if *faults != "" && *faults != "none" {
		fmt.Fprintf(stdout, "faults     profile %s seed %d  injected %d (flip %d alias %d sdrop %d scorrupt %d slost %d sdup %d mdelay %d stick %d)\n",
			*faults, *faultSeed, s.FaultsInjected,
			s.FaultPredBitFlip, s.FaultPredAlias, s.FaultStoreDrop, s.FaultStoreCorrupt,
			s.FaultSpawnLost, s.FaultSpawnDup, s.FaultMemDelay, s.FaultIQStick)
	}
	if s.DeadlockBreaks > 0 || s.Degradations > 0 || s.QuarantineClamps > 0 ||
		s.QuarantineDisables > 0 || s.RecoveryUnsticks > 0 {
		fmt.Fprintf(stdout, "recovery   breaks %d  unsticks %d  degradations %d  restorations %d  quarantine clamp %d disable %d suppressed %d\n",
			s.DeadlockBreaks, s.RecoveryUnsticks, s.Degradations, s.Restorations,
			s.QuarantineClamps, s.QuarantineDisables, s.QuarantineSuppressed)
	}
	return exitOK
}

// writeSeries writes the sampler's time series to path: CSV when the name
// ends in .csv, JSONL otherwise.
func writeSeries(path string, s *telemetry.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		if err := s.WriteCSV(f); err != nil {
			return err
		}
	} else {
		if err := s.WriteJSONL(f); err != nil {
			return err
		}
	}
	return f.Close()
}

func parseKinds(csv string) ([]trace.Kind, error) {
	var out []trace.Kind
	for _, part := range strings.Split(csv, ",") {
		k, ok := trace.KindByName(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("unknown trace kind %q (known: %s)",
				part, strings.Join(trace.KindNames(), ","))
		}
		out = append(out, k)
	}
	return out, nil
}

func parseSel(s string) (config.SelectorKind, error) {
	return config.ParseSelector(s)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
