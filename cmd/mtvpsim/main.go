// Command mtvpsim runs one benchmark on one machine configuration and
// prints its statistics.
//
// Usage:
//
//	mtvpsim -bench mcf -machine mtvp -contexts 4 -pred wf -sel ilp
//	mtvpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/trace"
	"mtvp/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "mcf", "benchmark name (see -list)")
		machine   = flag.String("machine", "baseline", "baseline | stvp | mtvp | mtvp-nostall | multival | spawn-only | wide-window")
		contexts  = flag.Int("contexts", 4, "hardware thread contexts (mtvp machines)")
		pred      = flag.String("pred", "wf", "value predictor: oracle | wf | dfcm | fcm | lastvalue | stride")
		sel       = flag.String("sel", "ilp", "load selector: ilp | l3 | always")
		spawnLat  = flag.Int("spawnlat", -1, "spawn latency in cycles (-1 = machine default)")
		storeBuf  = flag.Int("storebuf", -1, "store buffer entries per context (-1 = default, 0 = unbounded)")
		insts     = flag.Uint64("insts", 300_000, "useful committed instruction budget")
		seed      = flag.Uint64("seed", 1, "workload seed")
		noPrefS   = flag.Bool("noprefetch", false, "disable the stride prefetcher")
		check     = flag.Bool("check", false, "run the lockstep oracle checker and pipeline invariant auditor (slower; fails loudly on any divergence)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		traceN    = flag.Uint64("trace", 0, "print the first N pipeline trace events to stderr")
		traceKind = flag.String("tracekinds", "", "comma-separated event kinds to trace (spawn,confirm,kill,commit,...)")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-12s %-8s %s\n", b.Name, b.Kind, b.Suite)
		}
		return
	}

	bench, err := workload.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pk, err := parsePred(*pred)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sk, err := parseSel(*sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var cfg config.Config
	switch *machine {
	case "baseline":
		cfg = core.Baseline()
	case "stvp":
		cfg = core.STVP(pk, sk)
	case "mtvp":
		cfg = core.MTVP(*contexts, pk, sk)
	case "mtvp-nostall":
		cfg = core.MTVPNoStall(*contexts, pk, sk)
	case "multival":
		cfg = core.MTVPMultiValue(*contexts, 3, 6)
	case "spawn-only":
		cfg = core.SpawnOnly(*contexts)
	case "wide-window":
		cfg = core.WideWindow()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(1)
	}
	if *spawnLat >= 0 {
		cfg.VP.SpawnLatency = *spawnLat
	}
	if *storeBuf >= 0 {
		cfg.VP.StoreBufEntries = *storeBuf
	}
	if *noPrefS {
		cfg.Prefetch.Enabled = false
	}
	cfg.MaxInsts = *insts
	cfg.Seed = *seed
	cfg.Check = *check

	prog, image := bench.Build(*seed)
	var tr trace.Tracer
	if *traceN > 0 {
		w := &trace.Writer{W: os.Stderr, Max: *traceN}
		if *traceKind != "" {
			kinds, err := parseKinds(*traceKind)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w.Kinds = kinds
		}
		tr = w
	}
	res, err := core.RunTraced(cfg, prog, image, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := &res.Stats
	fmt.Printf("benchmark  %s (%s, %s)\n", bench.Name, bench.Kind, bench.Suite)
	fmt.Printf("machine    %s pred=%s sel=%s contexts=%d spawn=%dcyc storebuf=%d\n",
		*machine, cfg.VP.Predictor, cfg.VP.Selector, cfg.Contexts,
		cfg.VP.SpawnLatency, cfg.VP.StoreBufEntries)
	fmt.Printf("cycles     %d\n", s.Cycles)
	fmt.Printf("committed  %d (useful)\n", s.Committed)
	if *check {
		fmt.Printf("checked    %d useful commits verified against the lockstep oracle\n", res.Checked)
	}
	fmt.Printf("IPC        %.4f\n", s.UsefulIPC())
	fmt.Printf("branches   %d (%.2f%% mispredicted)\n", s.Branches,
		100*float64(s.BranchWrong)/maxf(float64(s.Branches), 1))
	fmt.Printf("loads      %d  DL1 miss %d  L2 miss %d  L3 miss %d  sbuf fwd %d\n",
		s.Loads, s.DL1Miss, s.L2Miss, s.L3Miss, s.StoreBufHits)
	fmt.Printf("prefetch   issued %d  stream hits %d\n", s.PrefIssued, s.PrefHits)
	if s.VPLookups > 0 {
		fmt.Printf("vpred      lookups %d  confident %d  followed %d  correct %d  wrong %d (acc %.3f)\n",
			s.VPLookups, s.VPConfident, s.VPPredicted, s.VPCorrect, s.VPWrong, s.VPAccuracy())
		fmt.Printf("threads    spawns %d  confirms %d  kills %d  stvp %d  reissues %d  squashed %d\n",
			s.Spawns, s.Confirms, s.Kills, s.STVPUsed, s.Reissues, s.Squashed)
		if s.VPWrongButPresent > 0 || s.MultiValueSaves > 0 {
			fmt.Printf("multival   wrong-but-present %d  saves %d\n",
				s.VPWrongButPresent, s.MultiValueSaves)
		}
	}
}

func parseKinds(csv string) ([]trace.Kind, error) {
	names := map[string]trace.Kind{
		"fetch": trace.KFetch, "disp": trace.KDispatch, "issue": trace.KIssue,
		"done": trace.KComplete, "commit": trace.KCommit, "squash": trace.KSquash,
		"reissue": trace.KReissue, "predict": trace.KPredict, "spawn": trace.KSpawn,
		"confirm": trace.KConfirm, "kill": trace.KKill, "promote": trace.KPromote,
	}
	var out []trace.Kind
	for _, part := range strings.Split(csv, ",") {
		k, ok := names[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("unknown trace kind %q", part)
		}
		out = append(out, k)
	}
	return out, nil
}

func parsePred(s string) (config.PredictorKind, error) {
	switch s {
	case "oracle":
		return config.PredOracle, nil
	case "wf":
		return config.PredWangFranklin, nil
	case "dfcm":
		return config.PredDFCM, nil
	case "fcm":
		return config.PredFCM, nil
	case "lastvalue":
		return config.PredLastValue, nil
	case "stride":
		return config.PredStride, nil
	}
	return 0, fmt.Errorf("unknown predictor %q", s)
}

func parseSel(s string) (config.SelectorKind, error) {
	switch s {
	case "ilp":
		return config.SelILPPred, nil
	case "l3":
		return config.SelL3Oracle, nil
	case "always":
		return config.SelAlways, nil
	}
	return 0, fmt.Errorf("unknown selector %q", s)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
