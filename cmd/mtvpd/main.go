// Command mtvpd is the distributed sweep fabric daemon: the campaign
// coordinator and the worker agent (internal/fabric).
//
// Usage:
//
//	mtvpd serve -addr :8100 -token T -journal-dir /var/lib/mtvp
//	mtvpd work  -coordinator http://sweep-host:8100 -token T -slots 8
//
// `serve` runs the coordinator: it accepts campaigns (mtvpbench
// -coordinator, mtvpreport -coordinator, or any fabric client), shards
// their cells across attached workers with TTL leases, requeues cells
// whose workers die, dedupes double completions, and persists every
// finished cell to a per-campaign fsynced journal under -journal-dir so a
// coordinator crash or restart resumes campaigns without re-running done
// cells. The same listener serves live telemetry: per-worker fleet gauges
// and fabric counters on /metrics (Prometheus text format), liveness on
// /healthz, pprof under /debug/pprof, and the fleet view as JSON on
// /api/v1/fleet.
//
// `work` runs a worker agent: it pulls cell leases from the coordinator,
// simulates them (the full machine config rides in each lease, so the
// agent never re-derives experiment presets), streams heartbeats, and
// reports results. Any number of agents may attach and detach at any time.
//
// The fabric does not trust its fleet. Every result carries an attestation
// digest over (campaign, cell key, config fingerprint, payload); results
// whose digests do not verify are rejected without charging the cell's
// retry budget, and repeat offenders are quarantined fleet-wide (visible
// as `trust` in /api/v1/fleet and the mtvp_fleet_trust gauge). `serve
// -verify k` additionally requires k distinct workers to agree on each
// cell's digest, with the coordinator's own re-execution as tiebreaker,
// and `-spot-ppm` audits a sampled fraction of cells the same way.
// `serve -max-queued-cells` / `-max-campaigns-per-tenant` shed excess
// load with 429 + Retry-After, which clients and agents honor with
// jittered backoff. `work -chaos <profile>` rehearses all of this by
// injecting seeded, reproducible network faults (drops, delays,
// duplicates, reorders, payload damage) in front of the agent, and
// `work -byzantine` makes the agent corrupt every payload it reports —
// together they let an operator drill the trust machinery end to end.
//
// Both subcommands shut down gracefully on SIGINT or SIGTERM and then exit
// 0: `serve` stops its listener and flushes every campaign journal;
// `work` cancels in-flight cells at the next observer poll and hands their
// leases back to the coordinator (a voluntary release, which requeues the
// cells immediately without charging their retry budgets). A second signal
// aborts immediately with exit 1. Other failures exit 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"mtvp/internal/experiments"
	"mtvp/internal/fabric"
	"mtvp/internal/fabric/chaos"
	"mtvp/internal/telemetry"
	"mtvp/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(1)
	}
	var code int
	switch os.Args[1] {
	case "serve":
		code = serveCmd(os.Args[2:])
	case "work":
		code = workCmd(os.Args[2:])
	case "tail":
		code = tailCmd(os.Args[2:])
	case "-version", "--version", "version":
		version.Print(os.Stdout, "mtvpd")
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "mtvpd: unknown subcommand %q\n\n", os.Args[1])
		usage(os.Stderr)
		code = 1
	}
	os.Exit(code)
}

func usage(w *os.File) {
	fmt.Fprintln(w, `mtvpd — distributed sweep fabric daemon

Subcommands:
  serve   run the campaign coordinator
  work    run a worker agent attached to a coordinator
  tail    straggler analytics for a campaign (slowest workers and cells)

Run "mtvpd <subcommand> -h" for flags; "mtvpd -version" prints the build.`)
}

// signalCtx returns a context cancelled by the first SIGINT/SIGTERM; a
// second signal exits 1 immediately (the escape hatch from a slow drain).
func signalCtx(logf func(string, ...any)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		logf("mtvpd: %v: shutting down gracefully (again to abort)", s)
		cancel()
		<-sigCh
		logf("mtvpd: second signal: aborting")
		os.Exit(1)
	}()
	return ctx, cancel
}

func stderrLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func serveCmd(args []string) int {
	fs := flag.NewFlagSet("mtvpd serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8100", "listen address for the API and telemetry")
		token      = fs.String("token", "", "bearer token required on every /api/v1 request (\"\" disables auth; loopback only)")
		journalDir = fs.String("journal-dir", "", "directory for per-campaign specs and fsynced result journals (\"\" = in-memory only, no crash resume)")
		leaseTTL   = fs.Duration("lease-ttl", 15*time.Second, "job lease time-to-live; a lease not heartbeat-extended within it expires and the cell requeues")
		retries    = fs.Int("retries", 3, "requeue budget per cell (lost workers and reported failures both spend it)")
		verify     = fs.Int("verify", 0, "redundant-execution factor: lease every cell to this many distinct workers and require a digest quorum (<2 disables; splits on the coordinator's own re-execution)")
		spotPPM    = fs.Uint("spot-ppm", 0, "spot-check rate in parts per million: audited cells are re-leased to a second worker for a confirming vote even with -verify off")
		spotSeed   = fs.Uint64("spot-seed", 0, "seed for the spot-check sampling stream (deterministic; 0 selects a fixed default)")
		maxCells   = fs.Int("max-queued-cells", 0, "admission limit: shed campaign submits (429 + Retry-After) that would push the total queued-cell count past this (0 = unlimited)")
		maxTenant  = fs.Int("max-campaigns-per-tenant", 0, "admission limit: shed submits from a tenant (campaign name) that already has this many running campaigns (0 = unlimited)")
		quiet      = fs.Bool("quiet", false, "suppress coordinator event logging on stderr")
	)
	fs.Parse(args)

	logf := stderrLogf
	if *quiet {
		logf = func(string, ...any) {}
	}
	reg := telemetry.NewRegistry()
	version.Register(reg)
	co, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		LeaseTTL:              *leaseTTL,
		Retries:               *retries,
		JournalDir:            *journalDir,
		Registry:              reg,
		Logf:                  logf,
		Verify:                *verify,
		SpotCheckPPM:          uint32(*spotPPM),
		SpotCheckSeed:         *spotSeed,
		LocalRun:              experiments.RunSpec, // tiebreaker for split verification votes
		MaxQueuedCells:        *maxCells,
		MaxCampaignsPerTenant: *maxTenant,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv, err := fabric.NewServer(co, fabric.ServerConfig{Addr: *addr, Token: *token})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	logf("mtvpd: coordinator on %s (journals: %s, lease TTL %s, %d retries per cell)",
		srv.URL(), orNone(*journalDir), *leaseTTL, *retries)
	if *token == "" {
		logf("mtvpd: WARNING: no -token set; the API is unauthenticated")
	}

	ctx, cancel := signalCtx(logf)
	defer cancel()
	<-ctx.Done()
	srv.Close()
	co.Close() // flushes and closes every campaign journal
	logf("mtvpd: coordinator stopped, journals flushed")
	return 0
}

func workCmd(args []string) int {
	fs := flag.NewFlagSet("mtvpd work", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8100", "coordinator base URL")
		token       = fs.String("token", "", "bearer token for the coordinator")
		name        = fs.String("name", "", "stable worker name in the fleet view (\"\" = host:pid)")
		slots       = fs.Int("slots", 0, "cells simulated concurrently (0 = GOMAXPROCS)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "idle backoff between lease attempts when the queue is empty (jittered ±50%)")
		reportTO    = fs.Duration("report-timeout", 0, "per-attempt timeout for result uploads (0 selects 10s)")
		jitterSeed  = fs.Uint64("jitter-seed", 0, "seed for the poll/retry jitter streams (0 selects a fixed default)")
		chaosProf   = fs.String("chaos", "", "inject seeded network faults between this agent and the coordinator via an in-process chaos proxy: "+chaosNames()+" (\"\" disables)")
		chaosSeed   = fs.Uint64("chaos-seed", 1, "seed for the -chaos fault schedule (same seed + profile + traffic = same faults)")
		byzantine   = fs.Bool("byzantine", false, "TESTING AID: corrupt every result payload after attesting it, exercising the coordinator's rejection and quarantine paths")
		drag        = fs.Duration("drag", 0, "TESTING AID: slow every cell by this much, making this agent a deliberate straggler for the fleet analytics to catch (0 = off)")
		quiet       = fs.Bool("quiet", false, "suppress agent event logging on stderr")
	)
	fs.Parse(args)

	logf := stderrLogf
	if *quiet {
		logf = func(string, ...any) {}
	}
	ctx, cancel := signalCtx(logf)
	defer cancel()

	target := *coordinator
	if *chaosProf != "" {
		prof, ok := chaos.ByName(*chaosProf)
		if !ok {
			fmt.Fprintf(os.Stderr, "mtvpd: unknown chaos profile %q (have: %s)\n", *chaosProf, chaosNames())
			return 1
		}
		proxy, err := chaos.NewProxy("127.0.0.1:0", target, prof, *chaosSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			proxy.Close()
			logf("mtvpd: chaos faults injected: %s", chaos.FormatCounts(proxy.T.Counts()))
		}()
		logf("mtvpd: chaos profile %q (seed %d) proxying %s via %s", *chaosProf, *chaosSeed, target, proxy.URL())
		target = proxy.URL()
	}
	var tamper func(json.RawMessage) json.RawMessage
	if *byzantine {
		logf("mtvpd: BYZANTINE MODE: every result payload will be corrupted after attestation")
		tamper = func(json.RawMessage) json.RawMessage {
			return json.RawMessage(`{"byzantine":true}`)
		}
	}
	run := fabric.RunFunc(experiments.RunSpec)
	if *drag > 0 {
		logf("mtvpd: DRAG MODE: every cell slowed by %s (deliberate straggler)", *drag)
		d, inner := *drag, run
		run = func(ctx context.Context, spec fabric.JobSpec, progress func(uint64, uint64)) (json.RawMessage, error) {
			res, err := inner(ctx, spec, progress)
			if err != nil {
				return nil, err
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
			return res, nil
		}
	}
	err := fabric.RunWorker(ctx, fabric.WorkerConfig{
		Coordinator:   target,
		Token:         *token,
		Name:          *name,
		Slots:         *slots,
		Poll:          *poll,
		ReportTimeout: *reportTO,
		JitterSeed:    *jitterSeed,
		Run:           run,
		Tamper:        tamper,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// tailCmd prints a campaign's straggler analytics: per-worker latency
// profile with relative slowdown, the slowest cells with their span
// breakdowns, and the campaign's aggregate simulated progress. The campaign
// may be named by ID, unique ID prefix, or campaign name.
func tailCmd(args []string) int {
	fs := flag.NewFlagSet("mtvpd tail", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8100", "coordinator base URL")
		token       = fs.String("token", "", "bearer token for the coordinator")
		k           = fs.Int("k", 10, "how many tail (slowest) cells to list")
		traceOut    = fs.String("trace-out", "", "also save the campaign's Chrome/Perfetto trace JSON to this file (load in ui.perfetto.dev)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mtvpd tail [flags] <campaign-id | id-prefix | campaign-name>")
		return 2
	}
	ctx, cancel := signalCtx(stderrLogf)
	defer cancel()
	cl := fabric.NewClient(*coordinator, *token)
	id, err := resolveCampaign(ctx, cl, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtvpd:", err)
		return 1
	}
	tl, err := cl.Timeline(ctx, id, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtvpd:", err)
		return 1
	}
	printTimeline(os.Stdout, tl)
	if *traceOut != "" {
		b, err := cl.TraceJSON(ctx, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtvpd:", err)
			return 1
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mtvpd:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "mtvpd: trace written to %s (%d bytes; load in ui.perfetto.dev)\n", *traceOut, len(b))
	}
	return 0
}

// resolveCampaign turns an ID, unique ID prefix, or campaign name into a
// campaign ID.
func resolveCampaign(ctx context.Context, cl *fabric.Client, arg string) (string, error) {
	if _, err := cl.Status(ctx, arg); err == nil {
		return arg, nil
	}
	list, err := cl.List(ctx)
	if err != nil {
		return "", err
	}
	var matches []string
	for _, st := range list {
		if strings.HasPrefix(st.ID, arg) || st.Name == arg {
			matches = append(matches, st.ID)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("no campaign matches %q (%d campaigns listed)", arg, len(list))
	default:
		return "", fmt.Errorf("%q is ambiguous: matches %d campaigns %v", arg, len(matches), matches)
	}
}

// printTimeline renders the straggler report for a terminal.
func printTimeline(w io.Writer, tl fabric.CampaignTimeline) {
	rep := tl.Report
	fmt.Fprintf(w, "campaign %s (%s) — %s\n", tl.ID, tl.Name, tl.State)
	fmt.Fprintf(w, "cells %d   fleet lease p50 %.1fms  p99 %.1fms  mean %.1fms\n",
		rep.Cells, rep.FleetP50MS, rep.FleetP99MS, rep.FleetMeanMS)
	fmt.Fprintf(w, "sim progress: %d cycles, %d commits (rate %.0f cycles/s)\n",
		tl.SimCycles, tl.SimCommits, tl.CycleRate)
	if tl.Dropped > 0 {
		fmt.Fprintf(w, "NOTE: %d spans dropped at the store bound (journal keeps the durable copy)\n", tl.Dropped)
	}
	if len(rep.Workers) > 0 {
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "WORKER\tCELLS\tP50(ms)\tP99(ms)\tMEAN(ms)\tSLOWDOWN")
		for _, ws := range rep.Workers {
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.2fx\n",
				ws.Name, ws.Cells, ws.P50MS, ws.P99MS, ws.MeanMS, ws.Slowdown)
		}
		tw.Flush()
		if slowest := rep.Slowest(); slowest != "" {
			fmt.Fprintf(w, "slowest worker: %s\n", slowest)
		}
	}
	if len(rep.Tail) > 0 {
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TAIL CELL\tWORKER\tTOTAL(ms)\tQUEUE\tLEASE\tEXEC\tREPORT\tATTEMPTS\tREQUEUES")
		for _, c := range rep.Tail {
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
				c.Key, c.Worker, c.TotalMS, c.QueueMS, c.LeaseMS, c.ExecMS, c.ReportMS, c.Attempts, c.Requeues)
		}
		tw.Flush()
	}
}

// chaosNames lists the built-in chaos profiles for flag help.
func chaosNames() string {
	var names []string
	for _, p := range chaos.Profiles() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
